package hnp

import (
	"math/rand"
	"testing"

	"hnp/internal/adapt"
	"hnp/internal/ads"
	"hnp/internal/baseline"
	"hnp/internal/chaos"
	"hnp/internal/core"
	"hnp/internal/cql"
	"hnp/internal/exp"
	"hnp/internal/hierarchy"
	"hnp/internal/iflow"
	"hnp/internal/netgraph"
	"hnp/internal/obs"
	"hnp/internal/query"
	"hnp/internal/query/rewrite"
	"hnp/internal/workload"
)

// benchCfg keeps figure regeneration fast enough to iterate on while
// preserving each experiment's structure; `cmd/smq` runs the full paper
// scale.
func benchCfg() exp.Config {
	return exp.Config{Seed: 42, Workloads: 2, Queries: 10, Fig9Sizes: []int{128, 256}}
}

func benchFig(b *testing.B, fn func(exp.Config) (*exp.Figure, error)) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := fn(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: joint optimization vs plan-then-
// deploy vs Relaxation on a 64-node network.
func BenchmarkFig2(b *testing.B) { benchFig(b, exp.Fig2) }

// BenchmarkFig5 regenerates Figure 5: Bottom-Up cost across max_cs.
func BenchmarkFig5(b *testing.B) { benchFig(b, exp.Fig5) }

// BenchmarkFig6 regenerates Figure 6: Top-Down cost across max_cs.
func BenchmarkFig6(b *testing.B) { benchFig(b, exp.Fig6) }

// BenchmarkFig7 regenerates Figure 7: sub-optimality and reuse.
func BenchmarkFig7(b *testing.B) { benchFig(b, exp.Fig7) }

// BenchmarkFig8 regenerates Figure 8: comparison with Relaxation and
// In-network placement.
func BenchmarkFig8(b *testing.B) { benchFig(b, exp.Fig8) }

// BenchmarkFig9 regenerates Figure 9: search-space scalability with
// network size.
func BenchmarkFig9(b *testing.B) { benchFig(b, exp.Fig9) }

// BenchmarkFig10 regenerates Figure 10: deployment time vs query size on
// the Emulab-substitute testbed.
func BenchmarkFig10(b *testing.B) { benchFig(b, exp.Fig10) }

// BenchmarkFig11 regenerates Figure 11: cumulative deployed cost on the
// Emulab-substitute testbed, with the runtime cross-check.
func BenchmarkFig11(b *testing.B) { benchFig(b, exp.Fig11) }

// --- per-algorithm planning microbenchmarks -------------------------------

type benchWorld struct {
	g     *netgraph.Graph
	paths *netgraph.Paths
	h     *hierarchy.Hierarchy
	w     *workload.Workload
}

func newBenchWorld(b *testing.B, nodes, maxCS int) *benchWorld {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := netgraph.MustTransitStub(nodes, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	h, err := hierarchy.Build(g, paths, maxCS, rng)
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.Generate(workload.Default(50, 32), nodes, rng)
	if err != nil {
		b.Fatal(err)
	}
	return &benchWorld{g, paths, h, w}
}

// BenchmarkTopDownPlan measures single-query Top-Down planning on a
// 128-node network (max_cs=32), the paper's standard setting.
func BenchmarkTopDownPlan(b *testing.B) {
	w := newBenchWorld(b, 128, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.w.Queries[i%len(w.w.Queries)]
		if _, err := core.TopDown(w.h, w.w.Catalog, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBottomUpPlan measures single-query Bottom-Up planning.
func BenchmarkBottomUpPlan(b *testing.B) {
	w := newBenchWorld(b, 128, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.w.Queries[i%len(w.w.Queries)]
		if _, err := core.BottomUp(w.h, w.w.Catalog, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalPlan measures the exhaustive/DP joint optimum the
// heuristics are judged against.
func BenchmarkOptimalPlan(b *testing.B) {
	w := newBenchWorld(b, 128, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.w.Queries[i%len(w.w.Queries)]
		if _, err := core.Optimal(w.g, w.paths, w.w.Catalog, q, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelaxationPlan measures the Relaxation baseline's placement.
func BenchmarkRelaxationPlan(b *testing.B) {
	w := newBenchWorld(b, 128, 32)
	rng := rand.New(rand.NewSource(2))
	emb := baseline.NewEmbedding(w.g, w.paths, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.w.Queries[i%len(w.w.Queries)]
		if _, err := baseline.Relaxation(w.g, w.paths, emb, w.w.Catalog, q, nil,
			baseline.DefaultRelaxation()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierarchyBuild measures building the virtual clustering
// hierarchy over 128 nodes — the one-time cost the heuristics amortize.
func BenchmarkHierarchyBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := netgraph.MustTransitStub(128, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.Build(g, paths, 32, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAPSP measures the all-pairs shortest-path snapshot every
// optimizer plans against.
func BenchmarkAPSP(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := netgraph.MustTransitStub(128, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPaths(netgraph.MetricCost)
	}
}

// benchDriftLink mirrors the netgraph test-side pickDriftLink: probe every
// link with a mild wiggle to just under its endpoints' path distance,
// refresh a throwaway snapshot, revert (reverts coalesce out of the delta
// log), and keep the link an incremental refresh absorbs with the fewest
// recomputed rows. Leaf links — a degree-1 node's only link sits on every
// row's path to that node — legitimately force full recomputes and are
// skipped; the drift benchmarks measure the local-churn case the delta
// machinery exists for.
func benchDriftLink(b *testing.B, g *netgraph.Graph) (netgraph.Link, float64) {
	b.Helper()
	fresh := g.ShortestPaths(netgraph.MetricCost)
	n := g.NumNodes()
	var best netgraph.Link
	bestBase, bestRows := 0.0, n
	for _, cand := range g.Links() {
		orig, _ := g.LinkCost(cand.A, cand.B)
		d := fresh.Dist(cand.A, cand.B)
		if err := g.SetLinkCost(cand.A, cand.B, d*0.95); err != nil {
			b.Fatal(err)
		}
		_, s1 := fresh.RefreshFrom(g, nil)
		if err := g.SetLinkCost(cand.A, cand.B, d*0.90); err != nil {
			b.Fatal(err)
		}
		_, s2 := fresh.RefreshFrom(g, nil)
		if err := g.SetLinkCost(cand.A, cand.B, orig); err != nil {
			b.Fatal(err)
		}
		rows := s1.RowsRecomputed
		if s2.RowsRecomputed > rows {
			rows = s2.RowsRecomputed
		}
		if s1.Mode == netgraph.RefreshIncremental && s2.Mode == netgraph.RefreshIncremental &&
			s1.RowsRecomputed > 0 && s2.RowsRecomputed > 0 && rows < bestRows {
			best, bestBase, bestRows = cand, d, rows
		}
	}
	if bestRows > n/8 {
		b.Fatalf("no link with a small drift blast radius (best repairs %d/%d rows)", bestRows, n)
	}
	return best, bestBase
}

// driftWarmup is enough single-link mutations to carry the graph's delta
// log past its overflow point (2×maxDeltaLog) so the log, the recycle
// pair, and the chain's scratch buffers all reach steady-state capacity
// before the timer starts.
const driftWarmup = 2048

// BenchmarkPathsDeltaRefresh measures absorbing a single-link cost drift
// on a 128-node network. "incremental" repairs the standing snapshot with
// RefreshFrom over a recycled ping-pong pair — the steady state of iflow
// and chaos maintenance, pinned at zero allocations by the netgraph
// suite; "full" recomputes all pairs from scratch, which is what every
// drift event cost before delta maintenance. The ns/op gap between the
// two sub-benchmarks is the headline win of incremental maintenance.
func BenchmarkPathsDeltaRefresh(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := netgraph.MustTransitStub(128, rng)
	l, base := benchDriftLink(b, g)
	b.Run("incremental", func(b *testing.B) {
		cur, spare := g.ShortestPaths(netgraph.MetricCost), (*netgraph.Paths)(nil)
		flip := 0
		for ; flip < driftWarmup; flip++ {
			if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
				b.Fatal(err)
			}
			old := cur
			cur, _ = cur.RefreshFrom(g, spare)
			spare = old
		}
		rows := 0.0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
				b.Fatal(err)
			}
			flip++
			old := cur
			next, stats := cur.RefreshFrom(g, spare)
			if stats.Mode != netgraph.RefreshIncremental || stats.RowsRecomputed == 0 {
				b.Fatalf("steady-state refresh = %+v, want incremental with rows", stats)
			}
			cur, spare = next, old
			rows += float64(stats.RowsRecomputed)
		}
		b.ReportMetric(rows/float64(b.N), "rows/op")
	})
	b.Run("full", func(b *testing.B) {
		flip := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
				b.Fatal(err)
			}
			flip++
			g.ShortestPaths(netgraph.MetricCost)
		}
	})
}

// BenchmarkChaosDriftMaintain measures the whole maintenance path one
// chaos link-drift event triggers — path refresh plus hierarchy rebind —
// in both regimes: "delta" repairs the snapshot incrementally and
// re-audits only clusters touched by the changed rows (RebindRows), the
// path chaos and the System facade now take; "full" recomputes all pairs
// and re-measures every cluster, the pre-incremental behavior.
func BenchmarkChaosDriftMaintain(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	g := netgraph.MustTransitStub(128, rng)
	l, base := benchDriftLink(b, g)
	paths := g.ShortestPaths(netgraph.MetricCost)
	h, err := hierarchy.Build(g, paths, 32, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("delta", func(b *testing.B) {
		cur, spare := paths, (*netgraph.Paths)(nil)
		flip := 0
		for ; flip < driftWarmup; flip++ {
			if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
				b.Fatal(err)
			}
			old := cur
			cur, _ = cur.RefreshFrom(g, spare)
			spare = old
		}
		if err := h.Rebind(cur); err != nil {
			b.Fatal(err)
		}
		// Empty (non-nil) row set: audits nothing, but primes the
		// hierarchy's lazily allocated row-mark scratch.
		if err := h.RebindRows(cur, []netgraph.NodeID{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
				b.Fatal(err)
			}
			flip++
			old := cur
			next, stats := cur.RefreshFrom(g, spare)
			cur, spare = next, old
			if err := h.RebindRows(next, stats.Rows); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		flip := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := g.SetLinkCost(l.A, l.B, base*(0.90+0.05*float64(flip%2))); err != nil {
				b.Fatal(err)
			}
			flip++
			if err := h.Rebind(g.ShortestPaths(netgraph.MetricCost)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- telemetry overhead ----------------------------------------------------

// BenchmarkDeploy measures the System planning path — the paper's
// standard 128-node/max_cs=32 setting — with telemetry disabled (the
// default) and enabled. The telemetry-off variant bounds what the
// instrumentation costs when nobody is watching: every hook reduces to
// one atomic load, and the delta against a hypothetical uninstrumented
// build must stay within noise (≤2%). Compare the two sub-benchmarks to
// see the full recording cost.
func BenchmarkDeploy(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"telemetry-off", false}, {"telemetry-on", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			prev := obs.Enabled.Load()
			obs.Enabled.Store(mode.on)
			defer obs.Enabled.Store(prev)

			g := TransitStubNetwork(128, 1)
			sys, err := NewSystem(g, 32, 1)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			ids := make([]StreamID, 6)
			for i := range ids {
				ids[i] = sys.AddStream("s", 1+rng.Float64()*50, NodeID(rng.Intn(128)))
			}
			for i := range ids {
				for j := i + 1; j < len(ids); j++ {
					sys.SetSelectivity(ids[i], ids[j], 0.005+0.01*rng.Float64())
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := 3 + i%3
				if _, err := sys.Plan(ids[:k], NodeID(i%128), AlgoTopDown); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation benchmarks ---------------------------------------------------

// BenchmarkAblationReuse contrasts Top-Down deployment sequences with and
// without the advertisement registry, isolating the cost of foregoing
// operator reuse (the Figure 7 effect as a microbench).
func BenchmarkAblationReuse(b *testing.B) {
	w := newBenchWorld(b, 128, 32)
	for _, mode := range []struct {
		name  string
		reuse bool
	}{{"with-reuse", true}, {"without-reuse", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				var reg *ads.Registry
				if mode.reuse {
					reg = ads.NewRegistry()
				}
				for _, q := range w.w.Queries[:10] {
					res, err := core.TopDown(w.h, w.w.Catalog, q, reg)
					if err != nil {
						b.Fatal(err)
					}
					total += res.Cost
					if reg != nil {
						reg.AdvertisePlan(q, res.Plan)
					}
				}
			}
			b.ReportMetric(total/float64(b.N), "cost/seq")
		})
	}
}

// BenchmarkAblationMaxCS sweeps the cluster-size knob for Top-Down,
// exposing the search-space/sub-optimality trade-off as time vs cost.
func BenchmarkAblationMaxCS(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := netgraph.MustTransitStub(128, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	w, err := workload.Generate(workload.Default(50, 16), 128, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, cs := range []int{4, 16, 64} {
		h, err := hierarchy.Build(g, paths, cs, rng)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{4: "max_cs=4", 16: "max_cs=16", 64: "max_cs=64"}[cs], func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				q := w.Queries[i%len(w.Queries)]
				res, err := core.TopDown(h, w.Catalog, q, nil)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Cost
			}
			b.ReportMetric(total/float64(b.N), "cost/query")
		})
	}
}

// BenchmarkAblationEstimates runs Top-Down once with the hierarchy's
// per-level cost estimates (as published) and once against a flat
// single-level hierarchy (exact distances, exhaustive over all nodes),
// quantifying what the hierarchical approximation gives up.
func BenchmarkAblationEstimates(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := netgraph.MustTransitStub(64, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	w, err := workload.Generate(workload.Default(30, 16), 64, rng)
	if err != nil {
		b.Fatal(err)
	}
	hier32, err := hierarchy.Build(g, paths, 16, rng)
	if err != nil {
		b.Fatal(err)
	}
	flat, err := hierarchy.Build(g, paths, 65, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		h    *hierarchy.Hierarchy
	}{{"hierarchical", hier32}, {"flat-exact", flat}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				q := w.Queries[i%len(w.Queries)]
				res, err := core.TopDown(v.h, w.Catalog, q, nil)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Cost
			}
			b.ReportMetric(total/float64(b.N), "cost/query")
		})
	}
}

// solveProblem builds the fixed-seed K-way join Problem over an n-node
// transit-stub network that BenchmarkSolveK4/K6 and the cmd/benchjson
// trajectory harness share, so the JSON numbers track exactly what the
// in-repo benchmarks measure.
func solveProblem(b *testing.B, k, n int, seed int64) core.Problem {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.MustTransitStub(n, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	cat := query.NewCatalog(0.01)
	ids := make([]query.StreamID, k)
	for i := range ids {
		ids[i] = cat.Add("s", 1+rng.Float64()*50, netgraph.NodeID(rng.Intn(n)))
	}
	q, err := query.NewQuery(0, ids, netgraph.NodeID(rng.Intn(n)))
	if err != nil {
		b.Fatal(err)
	}
	rt := query.BuildRates(cat, q)
	return core.Problem{
		Inputs: core.BaseInputs(cat, q, rt),
		Sites:  baseline.AllNodes(g),
		Dist:   paths.Dist,
		Rates:  rt,
		Goal:   q.All(),
		Sink:   q.Sink, Deliver: true,
	}
}

func benchSolveK(b *testing.B, k int) {
	prob := solveProblem(b, k, 32, 7)
	// Report the rate of candidates the DP actually examines, not the
	// nominal exhaustive space it covers (cost.ClusterSpace) — dividing
	// the covered space by wall-clock yields absurd 10^14 "plans/s"
	// figures that measure what the DP avoids doing.
	work := core.SolveWork(k, len(prob.Sites))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(work*float64(b.N)/b.Elapsed().Seconds(), "plans/s")
}

// BenchmarkSolveK4 measures the pooled flat-buffer DP kernel on a 4-way
// join over all 32 sites — the benchmark-trajectory anchor for the
// in-cluster search (BENCH_planner.json tracks it across perf PRs).
func BenchmarkSolveK4(b *testing.B) { benchSolveK(b, 4) }

// BenchmarkSolveK6 is the 6-way variant: 2^6 submask rows stress the DP
// slabs and the submask enumeration far harder than K=4.
func BenchmarkSolveK6(b *testing.B) { benchSolveK(b, 6) }

// BenchmarkSolveDP measures the in-cluster joint DP itself across input
// counts — the inner loop of everything.
func BenchmarkSolveDP(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := netgraph.MustTransitStub(32, rng)
	paths := g.ShortestPaths(netgraph.MetricCost)
	for _, k := range []int{3, 5, 7} {
		k := k
		b.Run(map[int]string{3: "k=3", 5: "k=5", 7: "k=7"}[k], func(b *testing.B) {
			cat := query.NewCatalog(0.01)
			ids := make([]query.StreamID, k)
			for i := range ids {
				ids[i] = cat.Add("s", 1+rng.Float64()*50, netgraph.NodeID(rng.Intn(32)))
			}
			q, err := query.NewQuery(0, ids, 5)
			if err != nil {
				b.Fatal(err)
			}
			rt := query.BuildRates(cat, q)
			prob := core.Problem{
				Inputs: core.BaseInputs(cat, q, rt),
				Sites:  baseline.AllNodes(g),
				Dist:   paths.Dist,
				Rates:  rt,
				Goal:   q.All(),
				Sink:   q.Sink, Deliver: true,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Solve(prob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- migration benchmarks --------------------------------------------------

// migratePlans builds the fixed-seed K=6 world BenchmarkMigrate and the
// cmd/benchjson trajectory harness share: a 32-node transit-stub network,
// six streams, and two left-deep plans differing in a single join
// placement (the third join moves node 7 -> 10).
func migratePlans() (*netgraph.Graph, *query.Catalog, *query.Query, *query.PlanNode, *query.PlanNode) {
	rng := rand.New(rand.NewSource(8))
	g := netgraph.MustTransitStub(32, rng)
	cat := query.NewCatalog(0.01)
	ids := make([]query.StreamID, 6)
	for i := range ids {
		ids[i] = cat.Add("s", 1+rng.Float64()*20, netgraph.NodeID(rng.Intn(32)))
	}
	q, err := query.NewQuery(0, ids, 3)
	if err != nil {
		panic(err)
	}
	rt := query.BuildRates(cat, q)
	leftDeep := func(locs []netgraph.NodeID) *query.PlanNode {
		leaf := func(pos int) *query.PlanNode {
			m := query.Mask(1 << uint(pos))
			return query.Leaf(query.Input{
				Mask: m, Rate: rt.Rate(m), Loc: cat.Stream(ids[pos]).Source, Sig: q.SigOf(m),
			})
		}
		cur := leaf(0)
		for i := 1; i < q.K(); i++ {
			cur = query.Join(cur, leaf(i), locs[i-1], rt.Rate(cur.Mask|query.Mask(1<<uint(i))))
		}
		return cur
	}
	planA := leftDeep([]netgraph.NodeID{5, 6, 7, 8, 9})
	planB := leftDeep([]netgraph.NodeID{5, 6, 10, 8, 9})
	return g, cat, q, planA, planB
}

// BenchmarkMigrate contrasts diff-based plan migration with the teardown
// path it replaces, for a single placement change in a K=6 plan: "delta"
// applies iflow.Runtime.Migrate (one create + one retire, everything else
// kept running in place), "teardown" undeploys and redeploys from scratch
// (every operator down, every operator up). ns/op is local planning
// bookkeeping — the delta path pays for diffing; ops-churned/op is what a
// deployed system pays — operators stopped or started, windows and
// statistics lost with each. The churn gap (~2 vs ~2K ops) is what the
// plan IR + diff machinery buys at adaptation time.
func BenchmarkMigrate(b *testing.B) {
	g, cat, q, planA, planB := migratePlans()
	const until = 1e6
	b.Run("delta", func(b *testing.B) {
		rt := iflow.New(g, iflow.DefaultConfig(), 1)
		if err := rt.Deploy(q, planA, cat, until); err != nil {
			b.Fatal(err)
		}
		churn := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			target := planB
			if i%2 == 1 {
				target = planA
			}
			rep, err := rt.Migrate(q, target, cat, until)
			if err != nil {
				b.Fatal(err)
			}
			churn += rep.Delta()
		}
		b.ReportMetric(float64(churn)/float64(b.N), "ops-churned/op")
	})
	b.Run("teardown", func(b *testing.B) {
		rt := iflow.New(g, iflow.DefaultConfig(), 1)
		if err := rt.Deploy(q, planA, cat, until); err != nil {
			b.Fatal(err)
		}
		churn := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			target := planB
			if i%2 == 1 {
				target = planA
			}
			torn := rt.NumOperators()
			if err := rt.Undeploy(q.ID); err != nil {
				b.Fatal(err)
			}
			torn -= rt.NumOperators()
			if err := rt.Deploy(q, target, cat, until); err != nil {
				b.Fatal(err)
			}
			churn += torn + rt.NumOperators()
		}
		b.ReportMetric(float64(churn)/float64(b.N), "ops-churned/op")
	})
}

// BenchmarkAdaptControl measures the closed-loop re-optimization
// controller. "step" is the per-interval overhead of one control step on
// a live deployment — windowed drift measurement, catalog calibration,
// re-plan, diff, and the marginal byte-gain prediction — with migration
// disabled so the runtime stays fixed and every iteration pays the full
// decision path. "compare" replays the pinned chaos rate-shift seed under
// all three policies and reports the controller's byte totals relative to
// the never-migrate and always-remigrate baselines (below 1.0 means the
// controller wins; these ratios are hardware-independent, so a regression
// is real on any machine).
func BenchmarkAdaptControl(b *testing.B) {
	b.Run("step", func(b *testing.B) {
		g, cat, q, planA, planB := migratePlans()
		const until = 1e9
		rt := iflow.New(g, iflow.DefaultConfig(), 1)
		if err := rt.Deploy(q, planA, cat, until); err != nil {
			b.Fatal(err)
		}
		cfg := adapt.DefaultConfig()
		cfg.Mode = adapt.ModeNever // full predict path, no runtime mutation
		cfg.DriftThreshold = 1e-9  // Poisson noise clears the drift gate
		ctl := adapt.New(rt, cat, func(*query.Query) (*query.PlanNode, error) {
			return planB, nil
		}, cfg)
		ctl.Track(q, planA)
		rt.RunFor(5)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			rt.RunFor(1) // advance virtual time so the window is non-empty
			b.StartTimer()
			ctl.Step()
		}
	})
	b.Run("compare", func(b *testing.B) {
		var vsNever, vsAlways, migs float64
		for i := 0; i < b.N; i++ {
			out, err := chaos.CompareAdaptPolicies(chaos.RateShiftConfig(3))
			if err != nil {
				b.Fatal(err)
			}
			never, always, ctl := out[0], out[1], out[2]
			if ctl.Report.Oscillations != 0 {
				b.Fatalf("controller oscillated %d times", ctl.Report.Oscillations)
			}
			vsNever += ctl.Bytes() / never.Bytes()
			vsAlways += ctl.Bytes() / always.Bytes()
			migs += float64(ctl.Report.Adapt.Migrations)
		}
		b.ReportMetric(vsNever/float64(b.N), "bytes-vs-never")
		b.ReportMetric(vsAlways/float64(b.N), "bytes-vs-always")
		b.ReportMetric(migs/float64(b.N), "migrations/op")
	})
}

// BenchmarkLinkCostBatch contrasts a burst of link repricings applied one
// UpdateLinkCost at a time (all-pairs path recompute per link) against one
// batched UpdateLinkCosts call (single recompute at the end) on a 128-node
// network. The batch turns N recomputes into one; chaos link-drift and the
// adaptive controller both reprice in bursts, so this is the win they see.
func BenchmarkLinkCostBatch(b *testing.B) {
	const burst = 8
	rng := rand.New(rand.NewSource(12))
	g := netgraph.MustTransitStub(128, rng)
	links := g.Links()[:burst]
	b.Run("single", func(b *testing.B) {
		rt := iflow.New(g, iflow.DefaultConfig(), 1)
		for i := 0; i < b.N; i++ {
			scale := 1.0 + float64(i%2) // alternate so costs never drift off
			for _, l := range links {
				if err := rt.UpdateLinkCost(l.A, l.B, l.Cost*scale); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		rt := iflow.New(g, iflow.DefaultConfig(), 1)
		batch := make([]iflow.LinkCostUpdate, burst)
		for i := 0; i < b.N; i++ {
			scale := 1.0 + float64(i%2)
			for j, l := range links {
				batch[j] = iflow.LinkCostUpdate{A: l.A, B: l.B, Cost: l.Cost * scale}
			}
			if err := rt.UpdateLinkCosts(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLeftDeep contrasts bushy and left-deep plan spaces for
// the phased baseline: the same optimal placement over trees from the two
// search spaces.
func BenchmarkAblationLeftDeep(b *testing.B) {
	w := newBenchWorld(b, 64, 16)
	sites := baseline.AllNodes(w.g)
	for _, shape := range []string{"bushy", "left-deep"} {
		shape := shape
		b.Run(shape, func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				q := w.w.Queries[i%len(w.w.Queries)]
				rt := query.BuildRates(w.w.Catalog, q)
				ins := core.BaseInputs(w.w.Catalog, q, rt)
				var tree *query.PlanNode
				var err error
				if shape == "bushy" {
					tree, err = baseline.SelectivityTree(ins, rt, q.All())
				} else {
					tree, err = baseline.SelectivityTreeLeftDeep(ins, rt, q.All())
				}
				if err != nil {
					b.Fatal(err)
				}
				_, cost, err := baseline.PlaceFixedTree(tree, q, sites, w.paths.Dist, q.Sink, nil)
				if err != nil {
					b.Fatal(err)
				}
				total += cost
			}
			b.ReportMetric(total/float64(b.N), "cost/query")
		})
	}
}

// BenchmarkAblationTopology measures Top-Down planning cost and quality
// across network families: the transit-stub model of the paper, a grid,
// and a scale-free overlay.
func BenchmarkAblationTopology(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	costs := netgraph.CostRange{Lo: 1, Hi: 10}
	delay := netgraph.CostRange{Lo: 0.001, Hi: 0.06}
	tops := []struct {
		name string
		g    *netgraph.Graph
	}{
		{"transit-stub", netgraph.MustTransitStub(128, rng)},
		{"grid", netgraph.Grid(8, 16, costs, delay, rng)},
		{"scale-free", netgraph.ScaleFree(128, 2, costs, delay, rng)},
	}
	for _, tp := range tops {
		tp := tp
		b.Run(tp.name, func(b *testing.B) {
			paths := tp.g.ShortestPaths(netgraph.MetricCost)
			h, err := hierarchy.Build(tp.g, paths, 32, rng)
			if err != nil {
				b.Fatal(err)
			}
			w, err := workload.Generate(workload.Default(10, 16), 128, rng)
			if err != nil {
				b.Fatal(err)
			}
			subopt := 0.0
			for i := 0; i < b.N; i++ {
				q := w.Queries[i%len(w.Queries)]
				td, err := core.TopDown(h, w.Catalog, q, nil)
				if err != nil {
					b.Fatal(err)
				}
				opt, err := core.Optimal(tp.g, paths, w.Catalog, q, nil)
				if err != nil {
					b.Fatal(err)
				}
				subopt += td.Cost / opt.Cost
			}
			b.ReportMetric(subopt/float64(b.N), "td/opt")
		})
	}
}

// BenchmarkBatchOptimization measures the consolidated multi-query
// optimizer against sequential deployment on an overlapping batch.
func BenchmarkBatchOptimization(b *testing.B) {
	w := newBenchWorld(b, 64, 16)
	qs := w.w.Queries[:8]
	pf := func(q *query.Query, reg *ads.Registry) (core.Result, error) {
		return core.TopDown(w.h, w.w.Catalog, q, reg)
	}
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		batch, err := core.OptimizeBatch(pf, w.paths.Dist, qs, nil, 3)
		if err != nil {
			b.Fatal(err)
		}
		total += batch.TotalCost
	}
	b.ReportMetric(total/float64(b.N), "cost/batch")
}

// BenchmarkRewritePipeline measures the logical optimizer pipeline alone
// — constant folding, predicate pushdown and column pruning, statements
// pre-parsed — over the figure-workload statement grid. benchjson's
// RewritePushdown entry measures the same statements end to end
// (parse + rewrite + plan) and records the planned-bytes fraction.
func BenchmarkRewritePipeline(b *testing.B) {
	sys, sink := newSchemaSystem(b)
	var sts []*cql.Statement
	for _, s := range pushdownStatements {
		st, err := cql.Parse(sys.Catalog, s)
		if err != nil {
			b.Fatal(err)
		}
		sts = append(sts, st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range sts {
			q, err := st.Query(i, sink)
			if err != nil {
				b.Fatal(err)
			}
			out := rewrite.Apply(sys.Catalog, q, st.Pushdown())
			if out.BytesAfter > out.BytesBefore {
				b.Fatal("bytes grew")
			}
		}
	}
}
